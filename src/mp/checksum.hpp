// pdceval -- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) over payload
// bytes. Used by the reliable transport to reject corrupted frames: the
// fault decorator models corruption by perturbing the frame's transmitted
// CRC (payload buffers are immutable and shared), and the receiver detects
// the mismatch exactly as a real NIC would.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace pdc::mp {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC32 of `data` (check value: crc32("123456789") == 0xCBF43926).
[[nodiscard]] constexpr std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pdc::mp
