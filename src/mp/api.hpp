// pdceval -- top-level convenience API: run an SPMD (or host-node) program
// written against Communicator on a chosen platform with a chosen tool, and
// report the simulated execution time.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/plan.hpp"
#include "host/platform.hpp"
#include "mp/communicator.hpp"
#include "mp/runtime.hpp"
#include "mp/tool.hpp"
#include "sim/task.hpp"

namespace pdc::mp {

/// A per-rank program body. Invoked once per rank; ranks run concurrently
/// in simulated time. The same body serves SPMD and host-node styles (the
/// paper's host-node model is rank 0 acting as host).
using RankProgram = std::function<sim::Task<void>(Communicator&)>;

struct RunOutcome {
  sim::Duration elapsed;            ///< simulated wall time for the whole program
  std::uint64_t events{0};          ///< simulator events processed
  std::uint64_t messages{0};        ///< messages through the fabric
  std::uint64_t payload_bytes{0};   ///< application payload carried
  TransportStats transport{};       ///< reliability work, summed over ranks
  fault::InjectionStats injected{}; ///< faults the wire actually injected
  sim::MailboxStats mailbox{};      ///< matching work, summed over rank mailboxes
};

/// Intra-run thread count for the run_spmd* drivers (this thread's runs):
/// values > 1 shard the event loop across that many threads under
/// conservative lookahead, bit-identical to serial. 0 (the default) defers
/// to the PDC_SIM_THREADS environment variable (itself defaulting to 1).
/// Runs with an active trace capture, a cluster whose network reports no
/// lookahead, or fewer ranks than 2 stay serial regardless.
void set_sim_threads(int threads) noexcept;
[[nodiscard]] int sim_threads() noexcept;

/// Build a cluster of `nprocs` nodes of `platform`, run `program` on every
/// rank under `tool`, drive the simulation to completion and return the
/// simulated elapsed time. Throws whatever the program throws.
RunOutcome run_spmd(host::PlatformId platform, int nprocs, ToolKind tool,
                    const RankProgram& program);

/// As above, with an explicit (possibly hypothetical) tool cost profile.
RunOutcome run_spmd_with_profile(host::PlatformId platform, int nprocs, ToolKind label,
                                 const ToolProfile& profile, const RankProgram& program);

/// As run_spmd(), but with the platform network wrapped in a
/// fault::FaultyNetwork driven by `plan`. A disabled plan (all rates zero,
/// no flap windows) takes the ordinary reliable path and produces
/// bit-identical timings to run_spmd(); an armed plan switches the kernel
/// to its reliable transport (sequencing, CRC, ack/retransmit). Throws
/// TransportFailure if a message exhausts its retransmission budget.
RunOutcome run_spmd_faulty(host::PlatformId platform, int nprocs, ToolKind tool,
                           const fault::FaultPlan& plan, const RankProgram& program);

/// Thread-local accumulator of per-run transport + injection stats, summed
/// over every run_spmd_faulty() call on this thread. The sweep runner
/// snapshots it around worker batches to aggregate fleet-wide fault
/// telemetry without touching the deterministic result path.
struct FaultTelemetry {
  TransportStats transport{};
  fault::InjectionStats injected{};
};
[[nodiscard]] FaultTelemetry& transport_accumulator() noexcept;

/// Thread-local accumulator of per-run mailbox matching telemetry, summed
/// over every run_spmd* call on this thread (fault-free ones included).
/// All four fields are plain sums -- `peak_depth_sum` adds each run's peak
/// unmatched depth, rather than taking a max, so sweep deltas stay
/// order-independent and thread-count-independent.
struct MailboxTelemetry {
  std::uint64_t pushes{0};
  std::uint64_t matches{0};
  std::uint64_t items_scanned{0};
  std::uint64_t peak_depth_sum{0};  ///< sum over runs of per-run peak depth
};
[[nodiscard]] MailboxTelemetry& mailbox_accumulator() noexcept;

}  // namespace pdc::mp
