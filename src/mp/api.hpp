// pdceval -- top-level convenience API: run an SPMD (or host-node) program
// written against Communicator on a chosen platform with a chosen tool, and
// report the simulated execution time.
#pragma once

#include <cstdint>
#include <functional>

#include "host/platform.hpp"
#include "mp/communicator.hpp"
#include "mp/runtime.hpp"
#include "mp/tool.hpp"
#include "sim/task.hpp"

namespace pdc::mp {

/// A per-rank program body. Invoked once per rank; ranks run concurrently
/// in simulated time. The same body serves SPMD and host-node styles (the
/// paper's host-node model is rank 0 acting as host).
using RankProgram = std::function<sim::Task<void>(Communicator&)>;

struct RunOutcome {
  sim::Duration elapsed;            ///< simulated wall time for the whole program
  std::uint64_t events{0};          ///< simulator events processed
  std::uint64_t messages{0};        ///< messages through the fabric
  std::uint64_t payload_bytes{0};   ///< application payload carried
};

/// Build a cluster of `nprocs` nodes of `platform`, run `program` on every
/// rank under `tool`, drive the simulation to completion and return the
/// simulated elapsed time. Throws whatever the program throws.
RunOutcome run_spmd(host::PlatformId platform, int nprocs, ToolKind tool,
                    const RankProgram& program);

/// As above, with an explicit (possibly hypothetical) tool cost profile.
RunOutcome run_spmd_with_profile(host::PlatformId platform, int nprocs, ToolKind label,
                                 const ToolProfile& profile, const RankProgram& program);

}  // namespace pdc::mp
