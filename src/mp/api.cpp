#include "mp/api.hpp"

#include <cstdlib>
#include <memory>
#include <utility>

#include "fault/faulty_network.hpp"
#include "trace/probe.hpp"

namespace pdc::mp {

namespace {

/// PDC_SIM_THREADS, read once per process (getenv racing a setenv in
/// another thread is undefined; sweep workers call this concurrently).
[[nodiscard]] int env_sim_threads() noexcept {
  static const int value = [] {
    const char* e = std::getenv("PDC_SIM_THREADS");
    if (!e || *e == '\0') return 1;
    const int v = std::atoi(e);
    return v > 0 ? v : 1;
  }();
  return value;
}

thread_local int sim_threads_override = 0;  // 0: defer to the environment

RunOutcome drive(sim::Simulation& simulation, Runtime& runtime, int nprocs, ToolKind tool,
                 const RankProgram& program) {
  int want = sim_threads();
  PDC_TRACE_BLOCK {
    // An active capture records the serial event-dispatch stream; sharding
    // would interleave per-thread sinks nondeterministically. Forcing one
    // shard keeps traced streams bit-identical to the serial loop's.
    want = 1;
  }
  if (want > 1) {
    // Lookahead = the fabric's minimum cross-rank latency. Zero means the
    // network cannot bound it (unknown topology) -- stay serial.
    const sim::Duration horizon = runtime.cluster().network().lookahead();
    simulation.configure_shards(want, nprocs, horizon);
  }
  for (int r = 0; r < nprocs; ++r) {
    simulation.spawn_on(r, program(runtime.comm(r)),
                        std::string(to_string(tool)) + ".rank" + std::to_string(r));
  }
  const sim::TimePoint end = simulation.run();
  RunOutcome out{
      .elapsed = end - sim::TimePoint::origin(),
      .events = simulation.events_processed(),
      .messages = runtime.messages_sent(),
      .payload_bytes = runtime.payload_bytes_sent(),
      .transport = runtime.transport_total(),
  };
  out.mailbox = runtime.mailbox_total();
  auto& boxes = mailbox_accumulator();
  boxes.pushes += out.mailbox.pushes;
  boxes.matches += out.mailbox.matches;
  boxes.items_scanned += out.mailbox.items_scanned;
  boxes.peak_depth_sum += out.mailbox.max_depth;
  return out;
}

}  // namespace

void set_sim_threads(int threads) noexcept { sim_threads_override = threads > 0 ? threads : 0; }

int sim_threads() noexcept {
  return sim_threads_override > 0 ? sim_threads_override : env_sim_threads();
}

RunOutcome run_spmd_with_profile(host::PlatformId platform, int nprocs, ToolKind label,
                                 const ToolProfile& profile, const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  Runtime runtime(cluster, label, profile);
  return drive(simulation, runtime, nprocs, label, program);
}

RunOutcome run_spmd(host::PlatformId platform, int nprocs, ToolKind tool,
                    const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  Runtime runtime(cluster, tool);
  return drive(simulation, runtime, nprocs, tool, program);
}

RunOutcome run_spmd_faulty(host::PlatformId platform, int nprocs, ToolKind tool,
                           const fault::FaultPlan& plan, const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  auto faulty = std::make_unique<fault::FaultyNetwork>(simulation, cluster.take_network(), plan);
  fault::FaultyNetwork* wire = faulty.get();
  cluster.install_network(std::move(faulty));
  // Built after the swap: the Runtime caches the wire's reliability.
  Runtime runtime(cluster, tool);
  RunOutcome out = drive(simulation, runtime, nprocs, tool, program);
  out.injected = wire->stats();
  auto& acc = transport_accumulator();
  acc.transport += out.transport;
  acc.injected += out.injected;
  return out;
}

FaultTelemetry& transport_accumulator() noexcept {
  thread_local FaultTelemetry telemetry;
  return telemetry;
}

MailboxTelemetry& mailbox_accumulator() noexcept {
  thread_local MailboxTelemetry telemetry;
  return telemetry;
}

}  // namespace pdc::mp
