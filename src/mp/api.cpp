#include "mp/api.hpp"

#include <memory>
#include <utility>

#include "fault/faulty_network.hpp"

namespace pdc::mp {

namespace {

RunOutcome drive(sim::Simulation& simulation, Runtime& runtime, int nprocs, ToolKind tool,
                 const RankProgram& program) {
  for (int r = 0; r < nprocs; ++r) {
    simulation.spawn(program(runtime.comm(r)),
                     std::string(to_string(tool)) + ".rank" + std::to_string(r));
  }
  const sim::TimePoint end = simulation.run();
  RunOutcome out{
      .elapsed = end - sim::TimePoint::origin(),
      .events = simulation.events_processed(),
      .messages = runtime.messages_sent(),
      .payload_bytes = runtime.payload_bytes_sent(),
      .transport = runtime.transport_total(),
  };
  out.mailbox = runtime.mailbox_total();
  auto& boxes = mailbox_accumulator();
  boxes.pushes += out.mailbox.pushes;
  boxes.matches += out.mailbox.matches;
  boxes.items_scanned += out.mailbox.items_scanned;
  boxes.peak_depth_sum += out.mailbox.max_depth;
  return out;
}

}  // namespace

RunOutcome run_spmd_with_profile(host::PlatformId platform, int nprocs, ToolKind label,
                                 const ToolProfile& profile, const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  Runtime runtime(cluster, label, profile);
  return drive(simulation, runtime, nprocs, label, program);
}

RunOutcome run_spmd(host::PlatformId platform, int nprocs, ToolKind tool,
                    const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  Runtime runtime(cluster, tool);
  return drive(simulation, runtime, nprocs, tool, program);
}

RunOutcome run_spmd_faulty(host::PlatformId platform, int nprocs, ToolKind tool,
                           const fault::FaultPlan& plan, const RankProgram& program) {
  sim::Simulation simulation;
  host::Cluster cluster(simulation, platform, nprocs);
  auto faulty = std::make_unique<fault::FaultyNetwork>(simulation, cluster.take_network(), plan);
  fault::FaultyNetwork* wire = faulty.get();
  cluster.install_network(std::move(faulty));
  // Built after the swap: the Runtime caches the wire's reliability.
  Runtime runtime(cluster, tool);
  RunOutcome out = drive(simulation, runtime, nprocs, tool, program);
  out.injected = wire->stats();
  auto& acc = transport_accumulator();
  acc.transport += out.transport;
  acc.injected += out.injected;
  return out;
}

FaultTelemetry& transport_accumulator() noexcept {
  thread_local FaultTelemetry telemetry;
  return telemetry;
}

MailboxTelemetry& mailbox_accumulator() noexcept {
  thread_local MailboxTelemetry telemetry;
  return telemetry;
}

}  // namespace pdc::mp
