// pdceval -- fast order-preserving radix-2 FFT kernel.
//
// The reference regenerates its twiddle factor w incrementally (w *= wlen)
// inside every butterfly loop: a loop-carried complex multiply that both
// serializes the pipeline and is recomputed for every block of every stage
// of every call. This kernel builds the per-(length, direction) twiddle
// sequence ONCE -- with the identical recurrence, so table[k] is bit-equal
// to the reference's w at step k -- caches it in a thread-local table pool,
// and streams the butterflies from the table. The data-path operations
// (u + v, u - v, data * w) are untouched, so outputs are bit-identical; the
// win is dropping the recurrence from the inner loop and freeing the
// butterflies to pipeline.
#pragma once

#include <complex>
#include <span>

namespace pdc::kernels {

/// The twiddle sequence w_k = wlen^k (k < len/2) for one butterfly stage,
/// built by the reference recurrence and cached per (len, inverse) in a
/// thread-local pool. The span stays valid for the thread's lifetime.
[[nodiscard]] std::span<const std::complex<double>> fft_twiddles(std::size_t len,
                                                                 bool inverse);

/// In-place radix-2 FFT; size must be a power of two. Bit-identical to
/// kernels::ref::fft1d.
void fft1d(std::span<std::complex<double>> data, bool inverse);

}  // namespace pdc::kernels
