#include "kernels/dct.hpp"

#include <cmath>
#include <numbers>

#include "kernels/dispatch.hpp"
#include "kernels/simd_avx2.hpp"

namespace pdc::kernels {

namespace {

// The exact expressions the reference evaluates per element, run once here.
double ref_cos(int x, int u) {
  return std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
}
double ref_alpha(int u) { return u == 0 ? 1.0 / std::numbers::sqrt2 : 1.0; }

DctTables build_tables() {
  DctTables t;
  for (int x = 0; x < kDctBlock; ++x) {
    for (int u = 0; u < kDctBlock; ++u) {
      t.cos_xu[x][u] = ref_cos(x, u);
      t.cos_ux[u][x] = t.cos_xu[x][u];
    }
  }
  for (int u = 0; u < kDctBlock; ++u) {
    for (int v = 0; v < kDctBlock; ++v) {
      t.scale[u][v] = (0.25 * ref_alpha(u)) * ref_alpha(v);
      t.alpha2[u][v] = ref_alpha(u) * ref_alpha(v);
    }
  }
  return t;
}

}  // namespace

const DctTables& dct_tables() noexcept {
  static const DctTables t = build_tables();
  return t;
}

void forward_dct_scalar(const double in[kDctBlock][kDctBlock],
                        double out[kDctBlock][kDctBlock]) noexcept {
  const DctTables& t = dct_tables();
  // acc[u][v] accumulates the reference's per-(u,v) sum. The (x,y) scan is
  // the outer pair here, but each acc[u][v] still receives its addends in
  // the reference's (x asc, y asc) order, each addend computed as
  // (in[x][y] * cos(x,u)) * cos(y,v).
  double acc[kDctBlock][kDctBlock] = {};
  for (int x = 0; x < kDctBlock; ++x) {
    for (int y = 0; y < kDctBlock; ++y) {
      const double s = in[x][y];
      const double* cyv = t.cos_xu[y];
      for (int u = 0; u < kDctBlock; ++u) {
        const double txu = s * t.cos_xu[x][u];
        for (int v = 0; v < kDctBlock; ++v) {
          acc[u][v] += txu * cyv[v];
        }
      }
    }
  }
  for (int u = 0; u < kDctBlock; ++u) {
    for (int v = 0; v < kDctBlock; ++v) {
      out[u][v] = t.scale[u][v] * acc[u][v];
    }
  }
}

void inverse_dct_scalar(const double in[kDctBlock][kDctBlock],
                        double out[kDctBlock][kDctBlock]) noexcept {
  const DctTables& t = dct_tables();
  // Hoisted per-(u,v) factor: ((alpha(u)*alpha(v)) * in[u][v]).
  double w[kDctBlock][kDctBlock];
  for (int u = 0; u < kDctBlock; ++u) {
    for (int v = 0; v < kDctBlock; ++v) {
      w[u][v] = t.alpha2[u][v] * in[u][v];
    }
  }
  // acc[x][y] accumulates the reference's per-(x,y) sum in (u asc, v asc)
  // order; each addend is (w[u][v] * cos(x,u)) * cos(y,v).
  double acc[kDctBlock][kDctBlock] = {};
  for (int u = 0; u < kDctBlock; ++u) {
    for (int v = 0; v < kDctBlock; ++v) {
      const double wuv = w[u][v];
      const double* cvy = t.cos_ux[v];  // cos(y, v), contiguous over y
      for (int x = 0; x < kDctBlock; ++x) {
        const double txu = wuv * t.cos_xu[x][u];
        for (int y = 0; y < kDctBlock; ++y) {
          acc[x][y] += txu * cvy[y];
        }
      }
    }
  }
  for (int x = 0; x < kDctBlock; ++x) {
    for (int y = 0; y < kDctBlock; ++y) {
      out[x][y] = 0.25 * acc[x][y];
    }
  }
}

void forward_dct(const double in[kDctBlock][kDctBlock],
                 double out[kDctBlock][kDctBlock]) noexcept {
#if defined(PDC_HAVE_AVX2)
  if (active_isa() == Isa::Avx2) {
    detail::forward_dct_avx2(in, out);
    return;
  }
#endif
  forward_dct_scalar(in, out);
}

void inverse_dct(const double in[kDctBlock][kDctBlock],
                 double out[kDctBlock][kDctBlock]) noexcept {
#if defined(PDC_HAVE_AVX2)
  if (active_isa() == Isa::Avx2) {
    detail::inverse_dct_avx2(in, out);
    return;
  }
#endif
  inverse_dct_scalar(in, out);
}

}  // namespace pdc::kernels
