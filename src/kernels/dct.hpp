// pdceval -- fast order-preserving 8x8 DCT-II / IDCT kernels.
//
// The JPEG app's naive reference (kernels::ref) evaluates std::cos inside
// the innermost loop of an O(N^4)-per-block transform: 8192 libm calls per
// 8x8 block. These kernels reproduce the reference's floating-point result
// BIT-FOR-BIT while running ~10-50x faster, through exactly three
// order-preserving transformations:
//
//   1. Precomputation: the cosine and alpha factors are pure functions of
//      the loop indices; they are computed once (with the very same
//      std::cos expression) into DctTables.
//   2. Hoisting: per-(u,v) invariants move out of inner loops, keeping the
//      reference's left-to-right product association:
//        forward term  (in[x][y] * cos(x,u)) * cos(y,v)
//        inverse term  (((alpha(u)*alpha(v)) * in[u][v]) * cos(x,u)) * cos(y,v)
//   3. Loop interchange over *independent accumulators*: the (x,y) / (u,v)
//      scan order swaps so the inner dimension is contiguous, but each
//      output coefficient still receives exactly the same addends in
//      exactly the same order -- only work for DIFFERENT outputs is
//      interleaved. The AVX2 variant widens this: each SIMD lane owns one
//      output coefficient's accumulator chain, so lane-wise results equal
//      the scalar chain by construction (no re-association anywhere).
//
// The kernels translation units are compiled with -ffp-contract=off so no
// toolchain can fuse a*b+c into an FMA and change rounding behind the
// contract's back.
#pragma once

namespace pdc::kernels {

inline constexpr int kDctBlock = 8;

/// Cosine/alpha tables shared by the forward and inverse kernels. Built
/// once per process on first use.
struct DctTables {
  /// cos_xu[x][u] = cos((2x+1) * u * pi / 16) -- same value the reference's
  /// dct_cos(x, u) returns.
  alignas(64) double cos_xu[kDctBlock][kDctBlock];
  /// Transposed layout, cos_ux[u][x] = cos_xu[x][u], so the inverse kernel
  /// streams contiguously over its inner dimension.
  alignas(64) double cos_ux[kDctBlock][kDctBlock];
  /// scale[u][v] = (0.25 * alpha(u)) * alpha(v) -- the reference's output
  /// factor with its exact association.
  alignas(64) double scale[kDctBlock][kDctBlock];
  /// alpha2[u][v] = alpha(u) * alpha(v) -- the inverse kernel's per-input
  /// factor.
  alignas(64) double alpha2[kDctBlock][kDctBlock];
};

[[nodiscard]] const DctTables& dct_tables() noexcept;

/// Forward 8x8 DCT-II of a level-shifted block; bit-identical to
/// kernels::ref::forward_dct. Dispatched (scalar / AVX2).
void forward_dct(const double in[kDctBlock][kDctBlock],
                 double out[kDctBlock][kDctBlock]) noexcept;

/// Inverse 8x8 DCT; bit-identical to kernels::ref::inverse_dct.
void inverse_dct(const double in[kDctBlock][kDctBlock],
                 double out[kDctBlock][kDctBlock]) noexcept;

/// Undispatched scalar baselines (exposed so tests can pin SIMD == scalar
/// regardless of what active_isa() resolves to).
void forward_dct_scalar(const double in[kDctBlock][kDctBlock],
                        double out[kDctBlock][kDctBlock]) noexcept;
void inverse_dct_scalar(const double in[kDctBlock][kDctBlock],
                        double out[kDctBlock][kDctBlock]) noexcept;

}  // namespace pdc::kernels
