// pdceval -- internal declarations of the AVX2 kernel variants.
//
// Only compiled/reachable when the build defines PDC_HAVE_AVX2 (PDC_SIMD=ON
// and the toolchain accepts -mavx2); callers must additionally gate on the
// runtime cpuid check via dispatch.hpp. Every function here is bit-identical
// to its scalar twin: lanes carry independent work items only.
#pragma once

#include "kernels/dct.hpp"

namespace pdc::kernels::detail {

#if defined(PDC_HAVE_AVX2)

void forward_dct_avx2(const double in[kDctBlock][kDctBlock],
                      double out[kDctBlock][kDctBlock]) noexcept;
void inverse_dct_avx2(const double in[kDctBlock][kDctBlock],
                      double out[kDctBlock][kDctBlock]) noexcept;

/// f[i] = 4.0 / (1.0 + x2[i]) for i in [0, n). IEEE division is correctly
/// rounded, so the vector lanes equal the scalar results exactly.
void inv_quad_avx2(const double* x2, double* f, int n) noexcept;

#endif  // PDC_HAVE_AVX2

}  // namespace pdc::kernels::detail
