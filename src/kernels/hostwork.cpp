#include "kernels/hostwork.hpp"

namespace pdc::kernels {

namespace detail {

HostWork& host_work_mut() noexcept {
  thread_local HostWork acc;
  return acc;
}

}  // namespace detail

HostWork host_work() noexcept { return detail::host_work_mut(); }

}  // namespace pdc::kernels
