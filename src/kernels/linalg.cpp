#include "kernels/linalg.hpp"

#include <algorithm>
#include <cstddef>

#include "kernels/hostwork.hpp"

namespace pdc::kernels {

namespace {

// Tile sizes: a KB x JB tile of B (64 KiB) fits comfortably in L2 alongside
// the C rows being updated.
constexpr int kJB = 256;
constexpr int kKB = 64;

}  // namespace

void matmul_rows(const double* a, int m, const double* b, int n, double* c) {
  const ScopedHostWork probe;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m) * n; ++i) c[i] = 0.0;
  for (int jj = 0; jj < n; jj += kJB) {
    const int jend = std::min(jj + kJB, n);
    for (int kk = 0; kk < n; kk += kKB) {
      const int kend = std::min(kk + kKB, n);
      for (int i = 0; i < m; ++i) {
        const double* __restrict ai = a + static_cast<std::size_t>(i) * n;
        double* __restrict ci = c + static_cast<std::size_t>(i) * n;
        for (int k = kk; k < kend; ++k) {
          const double aik = ai[k];
          const double* __restrict bk = b + static_cast<std::size_t>(k) * n;
          for (int j = jj; j < jend; ++j) {
            ci[j] += aik * bk[j];
          }
        }
      }
    }
  }
}

void rank1_sub(double* row, const double* pivot, double f, int from, int n) noexcept {
  double* __restrict r = row;
  const double* __restrict p = pivot;
  for (int j = from; j < n; ++j) r[j] -= f * p[j];
}

}  // namespace pdc::kernels
