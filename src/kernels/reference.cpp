#include "kernels/reference.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace pdc::kernels::ref {

namespace {

double dct_cos(int x, int u) {
  return std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
}

double alpha(int u) { return u == 0 ? 1.0 / std::numbers::sqrt2 : 1.0; }

}  // namespace

void forward_dct(const double in[8][8], double out[8][8]) {
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double sum = 0.0;
      for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
          sum += in[x][y] * dct_cos(x, u) * dct_cos(y, v);
        }
      }
      out[u][v] = 0.25 * alpha(u) * alpha(v) * sum;
    }
  }
}

void inverse_dct(const double in[8][8], double out[8][8]) {
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double sum = 0.0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          sum += alpha(u) * alpha(v) * in[u][v] * dct_cos(x, u) * dct_cos(y, v);
        }
      }
      out[x][y] = 0.25 * sum;
    }
  }
}

void fft1d(std::span<std::complex<double>> data, bool inverse) {
  using Complex = std::complex<double>;
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("ref::fft1d: size must be a power of two");
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

double inv_quad_sum(sim::Rng& rng, std::int64_t count) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    const double x = rng.next_double();
    sum += 4.0 / (1.0 + x * x);
  }
  return sum;
}

void matmul_rows(const double* a, int m, const double* b, int n, double* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) c[static_cast<std::size_t>(i) * n + j] = 0.0;
    for (int k = 0; k < n; ++k) {
      const double aik = a[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i) * n + j] += aik * b[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

}  // namespace pdc::kernels::ref
