// pdceval -- host-work telemetry: how much wall-clock the *applications'
// actual computation* costs, as opposed to the simulation machinery.
//
// Every kernel entry point (DCT strip, FFT, sort, MC batch, matmul, LU
// update sweep) charges its wall time to a thread-local accumulator via
// ScopedHostWork. eval::sweep snapshots the accumulator around each cell,
// which yields the per-cell split "app compute vs sim/kernel overhead" that
// bench-json reports fleet-wide (eval::last_sweep_host_stats). Timing is at
// batch granularity -- one steady_clock pair per strip/call, never per
// element -- so the probe itself stays well under 1% of kernel time.
#pragma once

#include <chrono>
#include <cstdint>

#include "trace/probe.hpp"

namespace pdc::kernels {

struct HostWork {
  std::uint64_t app_ns{0};    ///< wall time inside app-compute kernels
  std::uint64_t calls{0};     ///< kernel invocations charged
};

/// This thread's accumulated totals (monotonic; consumers diff snapshots).
[[nodiscard]] HostWork host_work() noexcept;

namespace detail {
HostWork& host_work_mut() noexcept;
}  // namespace detail

/// RAII probe: charges the enclosed scope to this thread's app-compute
/// account. Nested probes would double-charge; kernel entry points do not
/// nest (apps call kernels, kernels do not call each other's probed paths).
class ScopedHostWork {
 public:
  ScopedHostWork() noexcept : start_(std::chrono::steady_clock::now()) {}
  ScopedHostWork(const ScopedHostWork&) = delete;
  ScopedHostWork& operator=(const ScopedHostWork&) = delete;
  ~ScopedHostWork() {
    auto& acc = detail::host_work_mut();
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    acc.app_ns += wall_ns;
    ++acc.calls;
    PDC_TRACE_BLOCK {
      // Wall clock, not simulated time: category Host, off by default so
      // the deterministic capture mask never sees it.
      trace::emit({.aux0 = static_cast<std::int64_t>(wall_ns),
                   .kind = trace::Kind::HostWork});
    }
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pdc::kernels
