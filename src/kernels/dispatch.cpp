#include "kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>

namespace pdc::kernels {

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<bool>& forced_scalar() noexcept {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("PDC_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Avx2:
      return "avx2";
  }
  return "?";
}

bool simd_compiled() noexcept {
#if defined(PDC_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

Isa active_isa() noexcept {
#if defined(PDC_HAVE_AVX2)
  if (!forced_scalar().load(std::memory_order_relaxed) && cpu_has_avx2()) {
    return Isa::Avx2;
  }
#endif
  return Isa::Scalar;
}

void force_scalar(bool on) noexcept {
  forced_scalar().store(on, std::memory_order_relaxed);
}

}  // namespace pdc::kernels
