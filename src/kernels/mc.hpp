// pdceval -- Monte Carlo sample evaluation kernel.
//
// Two bit-identical implementations, kept because the measurement between
// them is itself a finding (see BM_Mc* in bench_kernels):
//
//   inv_quad_sum          The production path: the fused per-sample loop,
//                         same shape as the reference. sim::Rng is a
//                         splitmix-style generator whose state update is a
//                         single add, so consecutive draws carry no long
//                         dependency chain -- the out-of-order core already
//                         overlaps each sample's divide with its
//                         neighbours', leaving the (mandatory) serial sum
//                         chain as the only bound. Measured fastest.
//
//   inv_quad_sum_batched  The ablation: stack-buffered batches of 256
//                         draws, divides evaluated per batch (4-wide under
//                         AVX2, where IEEE-correctly-rounded vdivpd equals
//                         scalar divsd exactly), then folded in draw order.
//                         Bit-identical, but measurably SLOWER than the
//                         fused loop: the extra stores/loads buy nothing
//                         because the divides were never the bottleneck.
//
// Per-sample values and accumulation order match the reference exactly in
// both, so results are bit-identical everywhere.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace pdc::kernels {

/// sum of 4/(1 + x_i^2) over `count` sequential draws from `rng`;
/// bit-identical to kernels::ref::inv_quad_sum.
[[nodiscard]] double inv_quad_sum(sim::Rng& rng, std::int64_t count);

/// Batched ablation variant (see file comment); bit-identical, dispatched
/// scalar/AVX2. Benchmarked, not used on the production path.
[[nodiscard]] double inv_quad_sum_batched(sim::Rng& rng, std::int64_t count);

}  // namespace pdc::kernels
