// pdceval -- runtime ISA dispatch for the compute-kernel layer.
//
// The kernels in pdc::kernels come in a scalar baseline plus (when the
// build enables PDC_SIMD and the compiler can target AVX2) a SIMD variant.
// Dispatch is resolved once per query from three gates:
//   1. compile time: was an AVX2 translation unit built at all?
//   2. run time:     does this CPU report AVX2 (cpuid)?
//   3. override:     force_scalar(true) or the PDC_FORCE_SCALAR env var.
// Every SIMD kernel is bit-identical to its scalar twin by construction --
// lanes only ever carry *independent* work items (distinct output
// coefficients, distinct samples), never re-associated partial sums -- so
// flipping the dispatch must not change a single output byte. Tests pin
// that on both paths.
#pragma once

namespace pdc::kernels {

enum class Isa { Scalar, Avx2 };

[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// The ISA the dispatched kernels will use for the next call on this
/// thread (all three gates applied).
[[nodiscard]] Isa active_isa() noexcept;

/// True when a SIMD translation unit was compiled in (PDC_SIMD=ON and the
/// toolchain supports it); independent of the runtime cpuid check.
[[nodiscard]] bool simd_compiled() noexcept;

/// Test/bench hook: pin dispatch to the scalar baseline (process-wide).
/// Also settable from the environment: PDC_FORCE_SCALAR=1.
void force_scalar(bool on) noexcept;

}  // namespace pdc::kernels
