// pdceval -- AVX2 kernel variants (compiled with -mavx2 -ffp-contract=off).
//
// Bit-identity discipline: every __m256d lane carries ONE output
// coefficient's (or one sample's) value through the same multiply/add/divide
// sequence the scalar baseline uses. Multiplies and adds never mix lanes,
// partial sums are never re-associated, and no FMA is emitted (-mavx2 does
// not enable FMA and contraction is off), so each lane's result is the
// scalar result of that work item.
#include "kernels/simd_avx2.hpp"

#if defined(PDC_HAVE_AVX2)

#include <immintrin.h>

namespace pdc::kernels::detail {

void forward_dct_avx2(const double in[kDctBlock][kDctBlock],
                      double out[kDctBlock][kDctBlock]) noexcept {
  const DctTables& t = dct_tables();
  // acc[u][half]: 16 vectors = the 64 independent (u,v) accumulators.
  __m256d acc[kDctBlock][2];
  for (int u = 0; u < kDctBlock; ++u) {
    acc[u][0] = _mm256_setzero_pd();
    acc[u][1] = _mm256_setzero_pd();
  }
  for (int x = 0; x < kDctBlock; ++x) {
    for (int y = 0; y < kDctBlock; ++y) {
      const double s = in[x][y];
      const __m256d cy0 = _mm256_load_pd(&t.cos_xu[y][0]);
      const __m256d cy1 = _mm256_load_pd(&t.cos_xu[y][4]);
      for (int u = 0; u < kDctBlock; ++u) {
        // Scalar product first (same single multiply the scalar kernel
        // does), then broadcast into all four lanes.
        const __m256d txu = _mm256_set1_pd(s * t.cos_xu[x][u]);
        acc[u][0] = _mm256_add_pd(acc[u][0], _mm256_mul_pd(txu, cy0));
        acc[u][1] = _mm256_add_pd(acc[u][1], _mm256_mul_pd(txu, cy1));
      }
    }
  }
  for (int u = 0; u < kDctBlock; ++u) {
    _mm256_storeu_pd(&out[u][0],
                     _mm256_mul_pd(_mm256_load_pd(&t.scale[u][0]), acc[u][0]));
    _mm256_storeu_pd(&out[u][4],
                     _mm256_mul_pd(_mm256_load_pd(&t.scale[u][4]), acc[u][1]));
  }
}

void inverse_dct_avx2(const double in[kDctBlock][kDctBlock],
                      double out[kDctBlock][kDctBlock]) noexcept {
  const DctTables& t = dct_tables();
  // Hoisted per-(u,v) factor, as in the scalar kernel.
  alignas(32) double w[kDctBlock][kDctBlock];
  for (int u = 0; u < kDctBlock; ++u) {
    const __m256d a0 = _mm256_load_pd(&t.alpha2[u][0]);
    const __m256d a1 = _mm256_load_pd(&t.alpha2[u][4]);
    _mm256_store_pd(&w[u][0], _mm256_mul_pd(a0, _mm256_loadu_pd(&in[u][0])));
    _mm256_store_pd(&w[u][4], _mm256_mul_pd(a1, _mm256_loadu_pd(&in[u][4])));
  }
  __m256d acc[kDctBlock][2];
  for (int x = 0; x < kDctBlock; ++x) {
    acc[x][0] = _mm256_setzero_pd();
    acc[x][1] = _mm256_setzero_pd();
  }
  for (int u = 0; u < kDctBlock; ++u) {
    for (int v = 0; v < kDctBlock; ++v) {
      const double wuv = w[u][v];
      const __m256d cv0 = _mm256_load_pd(&t.cos_ux[v][0]);  // cos(y,v), y=0..3
      const __m256d cv1 = _mm256_load_pd(&t.cos_ux[v][4]);
      for (int x = 0; x < kDctBlock; ++x) {
        const __m256d txu = _mm256_set1_pd(wuv * t.cos_xu[x][u]);
        acc[x][0] = _mm256_add_pd(acc[x][0], _mm256_mul_pd(txu, cv0));
        acc[x][1] = _mm256_add_pd(acc[x][1], _mm256_mul_pd(txu, cv1));
      }
    }
  }
  const __m256d quarter = _mm256_set1_pd(0.25);
  for (int x = 0; x < kDctBlock; ++x) {
    _mm256_storeu_pd(&out[x][0], _mm256_mul_pd(quarter, acc[x][0]));
    _mm256_storeu_pd(&out[x][4], _mm256_mul_pd(quarter, acc[x][1]));
  }
}

void inv_quad_avx2(const double* x2, double* f, int n) noexcept {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d four = _mm256_set1_pd(4.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_add_pd(one, _mm256_loadu_pd(x2 + i));
    _mm256_storeu_pd(f + i, _mm256_div_pd(four, d));
  }
  for (; i < n; ++i) f[i] = 4.0 / (1.0 + x2[i]);
}

}  // namespace pdc::kernels::detail

#endif  // PDC_HAVE_AVX2
