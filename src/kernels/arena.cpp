#include "kernels/arena.hpp"

#include <algorithm>

namespace pdc::kernels {

Arena& Arena::local() {
  thread_local Arena arena;
  return arena;
}

void* Arena::raw_take(std::size_t bytes) {
  ++stats_.takes;
  // Advance through existing blocks looking for space at the bump position.
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t p = (base + offset_ + kAlign - 1) / kAlign * kAlign;
    if (p + bytes <= base + b.size) {
      offset_ = static_cast<std::size_t>(p - base) + bytes;
      return reinterpret_cast<void*>(p);
    }
    ++current_;
    offset_ = 0;
  }
  // Grow: a fresh block at least double the last one (or the request).
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size = std::max({kMinBlock, last * 2, bytes + kAlign});
  blocks_.push_back({std::make_unique<std::byte[]>(size), size});
  ++stats_.grows;
  stats_.bytes_reserved += size;
  current_ = blocks_.size() - 1;
  Block& b = blocks_.back();
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::uintptr_t p = (base + kAlign - 1) / kAlign * kAlign;
  offset_ = static_cast<std::size_t>(p - base) + bytes;
  return reinterpret_cast<void*>(p);
}

}  // namespace pdc::kernels
