#include "kernels/mc.hpp"

#include <algorithm>

#include "kernels/dispatch.hpp"
#include "kernels/hostwork.hpp"
#include "kernels/simd_avx2.hpp"

namespace pdc::kernels {

namespace {

void inv_quad_scalar(const double* x2, double* f, int n) noexcept {
  for (int i = 0; i < n; ++i) f[i] = 4.0 / (1.0 + x2[i]);
}

}  // namespace

double inv_quad_sum(sim::Rng& rng, std::int64_t count) {
  const ScopedHostWork probe;
  // Fused per-sample loop, same shape as the reference -- measured fastest
  // (see mc.hpp and BM_Mc* in bench_kernels). The independent work per
  // iteration (state mix, square, divide) pipelines across iterations in
  // the out-of-order core; only the sum chain is serial, and that chain is
  // mandatory under the order-preserving contract.
  double sum = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    const double x = rng.next_double();
    sum += 4.0 / (1.0 + x * x);
  }
  return sum;
}

double inv_quad_sum_batched(sim::Rng& rng, std::int64_t count) {
  const ScopedHostWork probe;
  constexpr int kBatch = 256;
  double x2[kBatch];
  double f[kBatch];
  auto* eval = inv_quad_scalar;
#if defined(PDC_HAVE_AVX2)
  if (active_isa() == Isa::Avx2) eval = detail::inv_quad_avx2;
#endif
  double sum = 0.0;
  while (count > 0) {
    const int b = static_cast<int>(std::min<std::int64_t>(kBatch, count));
    for (int i = 0; i < b; ++i) {
      const double x = rng.next_double();
      x2[i] = x * x;
    }
    eval(x2, f, b);
    for (int i = 0; i < b; ++i) sum += f[i];
    count -= b;
  }
  return sum;
}

}  // namespace pdc::kernels
