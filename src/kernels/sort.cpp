#include "kernels/sort.hpp"

#include <algorithm>
#include <cstring>

#include "kernels/arena.hpp"
#include "kernels/hostwork.hpp"

namespace pdc::kernels {

namespace {

// Below this size the counting passes cost more than they save.
constexpr std::size_t kSmallCutoff = 96;

}  // namespace

void sort_i32(std::span<std::int32_t> keys) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  const ScopedHostWork probe;
  if (n < kSmallCutoff) {
    std::sort(keys.begin(), keys.end());
    return;
  }

  Arena& arena = Arena::local();
  const Arena::Frame frame(arena);
  const std::span<std::uint32_t> scratch = arena.take<std::uint32_t>(n);
  const std::span<std::uint32_t> hist = arena.take<std::uint32_t>(4 * 256);
  std::memset(hist.data(), 0, hist.size_bytes());

  // One read builds all four digit histograms. The sign-bias (^ 0x80000000)
  // makes unsigned digit order equal signed key order.
  std::uint32_t* h0 = hist.data();
  std::uint32_t* h1 = h0 + 256;
  std::uint32_t* h2 = h1 + 256;
  std::uint32_t* h3 = h2 + 256;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = static_cast<std::uint32_t>(keys[i]) ^ 0x80000000u;
    ++h0[k & 0xFFu];
    ++h1[(k >> 8) & 0xFFu];
    ++h2[(k >> 16) & 0xFFu];
    ++h3[k >> 24];
  }

  auto* src = reinterpret_cast<std::uint32_t*>(keys.data());
  std::uint32_t* dst = scratch.data();
  // Source starts as the sign-biased keys: bias in place, un-bias at the end.
  for (std::size_t i = 0; i < n; ++i) src[i] ^= 0x80000000u;

  for (int pass = 0; pass < 4; ++pass) {
    std::uint32_t* h = hist.data() + static_cast<std::size_t>(pass) * 256;
    const int shift = pass * 8;
    // A pass whose digit is constant over the whole input moves nothing.
    bool trivial = false;
    for (int d = 0; d < 256; ++d) {
      if (h[d] == n) {
        trivial = true;
        break;
      }
      if (h[d] != 0) break;  // first non-zero bucket is not all of n
    }
    if (trivial) continue;
    // Exclusive prefix sum -> bucket write cursors.
    std::uint32_t sum = 0;
    for (int d = 0; d < 256; ++d) {
      const std::uint32_t c = h[d];
      h[d] = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t k = src[i];
      dst[h[(k >> shift) & 0xFFu]++] = k;
    }
    std::swap(src, dst);
  }

  // Un-bias, copying back if the sorted data ended up in scratch.
  auto* out = reinterpret_cast<std::uint32_t*>(keys.data());
  if (src == out) {
    for (std::size_t i = 0; i < n; ++i) out[i] ^= 0x80000000u;
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = src[i] ^ 0x80000000u;
  }
}

}  // namespace pdc::kernels
