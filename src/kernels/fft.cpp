#include "kernels/fft.hpp"

#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>
#include <utility>
#include <vector>

#include "kernels/hostwork.hpp"

namespace pdc::kernels {

std::span<const std::complex<double>> fft_twiddles(std::size_t len, bool inverse) {
  using Complex = std::complex<double>;
  // Node-based map: spans into the cached vectors stay valid across later
  // insertions. Sizes are the apps' FFT lengths (tiny), so the pool is
  // effectively bounded; it lives for the worker thread's lifetime.
  thread_local std::map<std::uint64_t, std::vector<Complex>> pool;
  const std::uint64_t key = (static_cast<std::uint64_t>(len) << 1) |
                            static_cast<std::uint64_t>(inverse);
  std::vector<Complex>& tw = pool[key];
  if (tw.empty()) {
    // The reference recurrence, verbatim: w_0 = 1, w_k = w_{k-1} * wlen.
    const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    tw.resize(len / 2);
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      tw[k] = w;
      w *= wlen;
    }
  }
  return tw;
}

void fft1d(std::span<std::complex<double>> data, bool inverse) {
  using Complex = std::complex<double>;
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft1d: size must be a power of two");
  }
  const ScopedHostWork probe;
  // Bit-reversal permutation (as the reference).
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const auto tw = fft_twiddles(len, inverse);
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      Complex* lo = data.data() + i;
      Complex* hi = lo + half;
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = lo[k];
        const Complex v = hi[k] * tw[k];
        lo[k] = u + v;
        hi[k] = u - v;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace pdc::kernels
