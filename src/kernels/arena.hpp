// pdceval -- per-thread scratch arena for the compute kernels.
//
// Kernels need transient working storage (radix-sort buckets, batch
// buffers) whose lifetime is one synchronous kernel call. The arena is a
// thread-local bump allocator over a small list of blocks: a Frame saves
// the bump position on entry and restores it on exit, so steady-state
// kernel calls perform zero heap allocations -- the blocks grown during the
// first few calls are simply reused. Blocks are never freed or moved while
// a frame is open, so spans handed out stay valid for the frame's lifetime.
//
// NOT for use across coroutine suspension points: sweep workers interleave
// many rank-coroutines on one thread, and a frame opened before a co_await
// would overlap frames of other ranks. Kernel calls are synchronous, which
// is exactly the scope a Frame covers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace pdc::kernels {

class Arena {
 public:
  struct Stats {
    std::uint64_t takes{0};           ///< spans handed out
    std::uint64_t grows{0};           ///< block allocations (0 in steady state)
    std::uint64_t bytes_reserved{0};  ///< total capacity currently held
  };

  /// This thread's arena (persists for the thread's lifetime).
  [[nodiscard]] static Arena& local();

  /// RAII scope: restores the bump position, making the storage taken
  /// inside the frame reusable by the next one.
  class Frame {
   public:
    explicit Frame(Arena& a) noexcept
        : arena_(a), block_(a.current_), offset_(a.offset_) {}
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    ~Frame() {
      arena_.current_ = block_;
      arena_.offset_ = offset_;
    }

   private:
    Arena& arena_;
    std::size_t block_;
    std::size_t offset_;
  };

  /// A span of `n` uninitialised T, 64-byte aligned, valid until the
  /// enclosing Frame closes.
  template <typename T>
  [[nodiscard]] std::span<T> take(std::size_t n) {
    return {static_cast<T*>(raw_take(n * sizeof(T))), n};
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kMinBlock = std::size_t{64} * 1024;

  [[nodiscard]] void* raw_take(std::size_t bytes);

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };
  std::vector<Block> blocks_;
  std::size_t current_{0};  // block the bump pointer lives in
  std::size_t offset_{0};   // bump offset within blocks_[current_]
  Stats stats_;
};

}  // namespace pdc::kernels
