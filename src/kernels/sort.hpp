// pdceval -- fast int32 key sort for the PSRS app.
//
// std::sort on 32-bit keys is branch-bound introsort: every comparison on
// random keys is a coin-flip mispredict. This kernel is a branchless LSD
// radix sort -- four 8-bit counting passes (the top pass biased so signed
// order falls out) over per-thread Arena scratch, with the histogram for
// all four digits built in a single read. Passes whose digit is constant
// across the whole input are skipped. The output is the ascending key
// sequence -- byte-identical to std::sort's output, since equal int32 keys
// are indistinguishable -- so the order-preserving contract holds trivially
// while the sort runs ~3-5x faster and allocates nothing in steady state.
#pragma once

#include <cstdint>
#include <span>

namespace pdc::kernels {

/// Sort `keys` ascending in place. Scratch comes from Arena::local(); no
/// heap allocation once the arena has warmed up.
void sort_i32(std::span<std::int32_t> keys);

}  // namespace pdc::kernels
