// pdceval -- naive reference implementations: the executable spec of the
// order-preserving contract.
//
// These are the exact pre-kernel-layer app loops (cos in the innermost DCT
// loop, per-stage incremental twiddles, straight triple-loop matmul, one
// divide per MC sample). Tests assert the fast kernels reproduce them
// bit-for-bit; bench_kernels measures the speedup against them. They are
// deliberately NOT optimised -- do not "fix" them, they are the contract.
#pragma once

#include <complex>
#include <cstdint>
#include <span>

#include "sim/rng.hpp"

namespace pdc::kernels::ref {

void forward_dct(const double in[8][8], double out[8][8]);
void inverse_dct(const double in[8][8], double out[8][8]);

/// In-place radix-2 FFT with per-butterfly incremental twiddles.
void fft1d(std::span<std::complex<double>> data, bool inverse);

/// sum of 4/(1 + x_i^2) over `count` sequential draws from `rng`.
[[nodiscard]] double inv_quad_sum(sim::Rng& rng, std::int64_t count);

/// c[m x n] = a[m x n] * b[n x n], plain i-k-j loops.
void matmul_rows(const double* a, int m, const double* b, int n, double* c);

}  // namespace pdc::kernels::ref
