// pdceval -- cache-blocked dense linear algebra kernels.
//
// matmul_rows keeps the reference's i-k-j accumulation: for every output
// element c(i,j) the k terms are added strictly ascending, each as
// c += a(i,k) * b(k,j). Blocking over (jj, kk) tiles only changes WHICH
// independent output elements are in flight -- within a (i,j) pair the kk
// tiles are visited ascending and k ascends inside each tile, so the
// per-element operation order (and therefore every rounding step) is
// unchanged while B tiles stay hot in cache.
//
// rank1_sub is the LU inner update row[j] -= f * pivot[j] with __restrict
// pointers so the compiler can vectorize it; per-element operations are
// untouched (independent elements, no re-association).
#pragma once

namespace pdc::kernels {

/// c[m x n] = a[m x n] * b[n x n]; bit-identical to ref::matmul_rows.
void matmul_rows(const double* a, int m, const double* b, int n, double* c);

/// row[j] -= f * pivot[j] for j in [from, n). `row` and `pivot` must not
/// overlap (distinct matrix rows).
void rank1_sub(double* row, const double* pivot, double f, int from, int n) noexcept;

}  // namespace pdc::kernels
