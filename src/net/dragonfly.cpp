#include "net/dragonfly.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/probe.hpp"

namespace pdc::net {

namespace {

/// Global-link key: source group (24 bits) | dest group (24 bits) | cable
/// index (16 bits). Group counts stay far below 2^24 at any plausible P.
[[nodiscard]] std::uint64_t global_key(std::int32_t gs, std::int32_t gd,
                                       std::int32_t cable) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gs)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gd)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cable) & 0xFFFFu);
}

}  // namespace

DragonflyNetwork::DragonflyNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                                   DragonflyParams params)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      nodes_(nodes),
      tx_(sim, name_ + ".tx", static_cast<std::size_t>(std::max(nodes, 1))),
      rx_(sim, name_ + ".rx", static_cast<std::size_t>(std::max(nodes, 1))),
      globals_(sim, name_) {
  if (nodes <= 0) throw std::invalid_argument("DragonflyNetwork: need at least one node");
  if (params_.group_size < 1 || params_.global_links_per_pair < 1) {
    throw std::invalid_argument("DragonflyNetwork: group_size and global links must be >= 1");
  }
}

std::int64_t DragonflyNetwork::wire_bytes(std::int64_t bytes) const noexcept {
  // Non-positive counts clamp to one empty frame (never negative wire
  // bytes, which would credit serialization time back to the sender).
  if (bytes < 0) bytes = 0;
  const std::int64_t frames =
      bytes <= 0 ? 1 : (bytes + params_.frame_payload - 1) / params_.frame_payload;
  return bytes + frames * params_.frame_overhead_bytes;
}

sim::Duration DragonflyNetwork::serialization(std::int64_t bytes,
                                              double rate_bps) const noexcept {
  return sim::from_seconds(static_cast<double>(wire_bytes(bytes)) * 8.0 / rate_bps);
}

sim::TimePoint DragonflyNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::out_of_range("DragonflyNetwork::transfer: node id out of range");
  }
  const sim::Duration ser = serialization(bytes, params_.line_rate_bps);
  const sim::TimePoint tx_done =
      tx_.at(static_cast<std::size_t>(src)).reserve(params_.access_overhead + ser);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .bytes = wire_bytes(bytes),
                 .aux0 = (tx_done - (params_.access_overhead + ser)).ns,
                 .aux1 = tx_done.ns,
                 .kind = trace::Kind::Frame,
                 .rank = static_cast<std::int16_t>(src),
                 .peer = static_cast<std::int16_t>(dst)});
  }
  // Head clears the source group's switch one latency after first byte.
  sim::TimePoint head = tx_done - ser + params_.switch_latency;
  sim::Duration stream_ser = ser;

  const std::int32_t gs = group_of(src);
  const std::int32_t gd = group_of(dst);
  if (gs != gd) {
    // Minimal route: one global cable of the (gs, gd) bundle, chosen
    // deterministically by destination, then the destination group switch.
    const std::int32_t cable = dst % params_.global_links_per_pair;
    auto& glink = globals_.at(global_key(gs, gd, cable), [&] {
      return ".g" + std::to_string(gs) + "-" + std::to_string(gd) + "." + std::to_string(cable);
    });
    const sim::Duration g_ser = serialization(bytes, params_.global_rate_bps);
    const sim::TimePoint done = glink.reserve_from(head, g_ser);
    head = done - g_ser + params_.global_latency + params_.switch_latency;
    stream_ser = std::max(stream_ser, g_ser);
  }

  const sim::TimePoint rx_done =
      rx_.at(static_cast<std::size_t>(dst)).reserve_from(head, stream_ser);
  return rx_done + params_.propagation;
}

}  // namespace pdc::net
