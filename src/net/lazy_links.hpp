// pdceval -- lazily-constructed link/port resources for large topologies.
//
// A hierarchical fabric for P=4096 hosts has tens of thousands of potential
// link resources, but any one cell only exercises the links its traffic
// actually crosses. Constructing every SerialResource (and its name string)
// up front would make cluster setup O(links) in both time and memory;
// creating each resource on first reservation keeps per-rank state
// O(active). Creation order does not affect results: a SerialResource is
// born idle, exactly as an eagerly-created one would be at first use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::net {

/// Sparse pool of SerialResources keyed by a 64-bit link id.
class LazyResourceMap {
 public:
  LazyResourceMap(sim::Simulation& sim, std::string prefix)
      : sim_(sim), prefix_(std::move(prefix)) {}

  /// The resource for `key`, created on first use. `describe` renders the
  /// human-readable name suffix and is only invoked on that first use, so
  /// the string formatting cost is paid once per *active* link.
  template <typename Describe>
  [[nodiscard]] sim::SerialResource& at(std::uint64_t key, Describe&& describe) {
    auto it = links_.find(key);
    if (it == links_.end()) {
      it = links_
               .emplace(key, std::make_unique<sim::SerialResource>(sim_, prefix_ + describe()))
               .first;
    }
    return *it->second;
  }

  /// Links actually touched so far (tests pin O(active) behaviour on this).
  [[nodiscard]] std::size_t active() const noexcept { return links_.size(); }

 private:
  sim::Simulation& sim_;
  std::string prefix_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::SerialResource>> links_;
};

/// Dense-by-index pool of per-node port resources, created on first use
/// (a 4096-node cluster running a 2-rank cell materialises 2 ports, not
/// 8192). The vector of null pointers is one allocation at construction.
class LazyPortArray {
 public:
  LazyPortArray(sim::Simulation& sim, std::string prefix, std::size_t count)
      : sim_(sim), prefix_(std::move(prefix)), ports_(count) {}

  [[nodiscard]] sim::SerialResource& at(std::size_t i) {
    auto& slot = ports_[i];
    if (!slot) {
      slot = std::make_unique<sim::SerialResource>(sim_, prefix_ + std::to_string(i));
    }
    return *slot;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ports_.size(); }
  [[nodiscard]] std::size_t active() const noexcept {
    std::size_t n = 0;
    for (const auto& p : ports_) n += p != nullptr;
    return n;
  }

 private:
  sim::Simulation& sim_;
  std::string prefix_;
  std::vector<std::unique_ptr<sim::SerialResource>> ports_;
};

}  // namespace pdc::net
