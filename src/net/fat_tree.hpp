// pdceval -- multi-level fat-tree network.
//
// `levels` tiers of switches above the hosts: a level-1 (edge) switch
// serves `arity` hosts, a level-l switch aggregates `arity` level-(l-1)
// switches, so capacity is arity^levels. Each switch owns `uplinks`
// physical cables toward its parent tier; with uplinks < arity the tier is
// oversubscribed by arity:uplinks and contention emerges on the shared
// uplinks rather than on a flat crossbar.
//
// Routing is deterministic D-mod-k: a packet for host d climbs from the
// source edge switch on uplink plane (d mod uplinks) until it reaches the
// lowest switch whose subtree contains both endpoints, then descends along
// the same plane into d's edge switch. Same (src, dst) pair, same path,
// every time -- runs stay bit-reproducible, and the classic fat-tree
// hot-spot patterns (many flows hashing onto one plane) appear naturally.
//
// Timing follows the cut-through discipline of SwitchedNetwork: the sender
// serialises on its tx port, the head of the stream crosses each switch
// after `switch_latency`, every traversed link is occupied for its own
// serialisation window starting at the head's arrival, and the receiver's
// rx port streams for as long as the slowest upstream stage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/lazy_links.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::net {

struct FatTreeParams {
  std::int32_t arity{16};    ///< hosts (or child switches) per switch
  std::int32_t levels{3};    ///< switch tiers; capacity = arity^levels
  std::int32_t uplinks{8};   ///< uplink planes per switch (oversubscription arity:uplinks)
  double line_rate_bps{100e9};    ///< host access links
  double uplink_rate_bps{100e9};  ///< each inter-switch cable
  sim::Duration switch_latency{sim::microseconds(1)};
  sim::Duration propagation{sim::microseconds(1)};
  sim::Duration access_overhead{sim::microseconds(2)};
  std::int64_t frame_payload{4096};
  std::int64_t frame_overhead_bytes{48};
};

class FatTreeNetwork final : public Network {
 public:
  FatTreeNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                 FatTreeParams params);

  sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) override;
  [[nodiscard]] double line_rate_bps() const noexcept override { return params_.line_rate_bps; }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t bytes) const noexcept override;

  /// Shortest path (same edge switch) still pays access overhead, the edge
  /// switch hop, and propagation before the first byte lands.
  [[nodiscard]] sim::Duration lookahead() const noexcept override {
    return params_.access_overhead + params_.switch_latency + params_.propagation;
  }

  [[nodiscard]] std::int32_t node_count() const noexcept { return nodes_; }

  /// Lowest tier whose subtree contains both hosts (0: same edge switch).
  /// Exposed for routing tests; src/dst must be valid node ids.
  [[nodiscard]] std::int32_t meet_level(NodeId src, NodeId dst) const noexcept;

  /// Inter-switch links a (src, dst) stream crosses: 2 * meet_level.
  [[nodiscard]] std::int32_t path_links(NodeId src, NodeId dst) const noexcept;

  /// Port + link resources created so far (O(active) state pins).
  [[nodiscard]] std::size_t active_resources() const noexcept {
    return tx_.active() + rx_.active() + links_.active();
  }

 private:
  [[nodiscard]] sim::Duration serialization(std::int64_t bytes, double rate_bps) const noexcept;
  void check_ids(NodeId src, NodeId dst) const;

  sim::Simulation& sim_;  // for trace timestamps only; timing flows via resources
  std::string name_;
  FatTreeParams params_;
  std::int32_t nodes_;
  std::vector<std::int64_t> span_;  ///< span_[l] = arity^l (hosts under a level-l switch)
  LazyPortArray tx_;
  LazyPortArray rx_;
  LazyResourceMap links_;
};

}  // namespace pdc::net
