#include "net/switched.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/probe.hpp"

namespace pdc::net {

SwitchedNetwork::SwitchedNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                                 SwitchedParams params)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      nodes_(nodes),
      tx_(sim, name_ + ".tx", static_cast<std::size_t>(std::max(nodes, 1))),
      rx_(sim, name_ + ".rx", static_cast<std::size_t>(std::max(nodes, 1))) {
  if (nodes <= 0) throw std::invalid_argument("SwitchedNetwork: need at least one node");
  if (params_.trunk_split) {
    trunk_ = std::make_unique<sim::SerialResource>(sim, name_ + ".trunk");
  }
}

std::int64_t SwitchedNetwork::wire_bytes(std::int64_t bytes) const noexcept {
  // Clamp to an empty payload: a non-positive byte count still occupies one
  // frame/cell on the wire, and must never yield negative wire bytes (a
  // negative count would *credit* serialization time).
  if (bytes < 0) bytes = 0;
  if (params_.cell_payload > 0) {
    // AAL5-style: 8-byte trailer, then pad to a whole number of cells.
    const std::int64_t payload = bytes + 8;
    const std::int64_t cells =
        (payload + params_.cell_payload - 1) / params_.cell_payload;
    return (cells > 0 ? cells : 1) * params_.cell_total;
  }
  const std::int64_t frames =
      bytes <= 0 ? 1 : (bytes + params_.frame_payload - 1) / params_.frame_payload;
  return bytes + frames * params_.frame_overhead_bytes;
}

sim::Duration SwitchedNetwork::serialization(std::int64_t bytes, double rate_bps) const noexcept {
  return sim::from_seconds(static_cast<double>(wire_bytes(bytes)) * 8.0 / rate_bps);
}

bool SwitchedNetwork::crosses_trunk(NodeId src, NodeId dst) const noexcept {
  return params_.trunk_split &&
         ((src < *params_.trunk_split) != (dst < *params_.trunk_split));
}

sim::TimePoint SwitchedNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  if (src < 0 || src >= node_count() || dst < 0 || dst >= node_count()) {
    throw std::out_of_range("SwitchedNetwork::transfer: node id out of range");
  }
  const sim::Duration ser = serialization(bytes, params_.line_rate_bps);
  // Sender occupies its tx port for access overhead + serialization.
  const sim::TimePoint tx_done =
      tx_.at(static_cast<std::size_t>(src)).reserve(params_.access_overhead + ser);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .bytes = wire_bytes(bytes),
                 .aux0 = (tx_done - (params_.access_overhead + ser)).ns,
                 .aux1 = tx_done.ns,
                 .kind = trace::Kind::Frame,
                 .rank = static_cast<std::int16_t>(src),
                 .peer = static_cast<std::int16_t>(dst)});
  }
  sim::TimePoint head = tx_done - ser + params_.switch_latency;  // first byte past switch
  sim::Duration stream_ser = ser;  // how long the byte stream takes past the slowest stage

  if (crosses_trunk(src, dst)) {
    const sim::Duration trunk_ser = serialization(bytes, params_.trunk_rate_bps);
    const sim::TimePoint trunk_done = trunk_->reserve_from(head, trunk_ser);
    head = trunk_done - trunk_ser + params_.switch_latency;
    stream_ser = std::max(stream_ser, trunk_ser);  // a slow trunk paces the whole stream
  }

  // Receiver rx port occupied cut-through: the window starts when the first
  // byte emerges from the switch and lasts as long as the slowest upstream
  // stage keeps streaming.
  const sim::TimePoint rx_done =
      rx_.at(static_cast<std::size_t>(dst)).reserve_from(head, stream_ser);
  return rx_done + params_.propagation;
}

}  // namespace pdc::net
