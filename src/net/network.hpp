// pdceval -- abstract network model.
//
// A Network answers one question: if `bytes` leave node `src` for node
// `dst` starting now, when does the last byte arrive at dst's NIC?
// Contention is modelled with busy-until SerialResources (exact FIFO
// queueing given the event loop's chronological calls).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace pdc::net {

using NodeId = std::int32_t;

/// Wire behaviour of a datagram-fragment protocol (PVM's pvmd-to-pvmd
/// traffic: 4 KB fragments, each acknowledged). On a shared half-duplex
/// medium the extra channel acquisitions and ack turnarounds are costly
/// under load; switched full-duplex fabrics ignore this (acks ride the
/// reverse path without contending).
struct ChunkProtocol {
  std::int64_t chunk_bytes{4096};
  std::int64_t ack_bytes{64};
  sim::Duration turnaround{sim::microseconds(250)};
};

class Network {
 public:
  virtual ~Network() = default;

  /// Start injecting `bytes` from src toward dst at the current simulated
  /// time; returns the arrival time of the last byte at dst.
  virtual sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) = 0;

  /// As transfer(), but carried by a stop-and-wait fragment protocol.
  /// Default: identical to transfer() (protocol costs negligible).
  virtual sim::TimePoint transfer_chunked(NodeId src, NodeId dst, std::int64_t bytes,
                                          const ChunkProtocol& /*protocol*/) {
    return transfer(src, dst, bytes);
  }

  /// Nominal line rate in bits/s (for reporting).
  [[nodiscard]] virtual double line_rate_bps() const noexcept = 0;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Wire-level bytes actually transmitted for a payload of `bytes`
  /// (framing/cell tax); used by utilisation reports and tests.
  [[nodiscard]] virtual std::int64_t wire_bytes(std::int64_t bytes) const noexcept = 0;
};

}  // namespace pdc::net
