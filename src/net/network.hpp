// pdceval -- abstract network model.
//
// A Network answers one question: if `bytes` leave node `src` for node
// `dst` starting now, when does the last byte arrive at dst's NIC?
// Contention is modelled with busy-until SerialResources (exact FIFO
// queueing given the event loop's chronological calls).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace pdc::net {

using NodeId = std::int32_t;

/// Wire behaviour of a datagram-fragment protocol (PVM's pvmd-to-pvmd
/// traffic: 4 KB fragments, each acknowledged). On a shared half-duplex
/// medium the extra channel acquisitions and ack turnarounds are costly
/// under load; switched full-duplex fabrics ignore this (acks ride the
/// reverse path without contending).
struct ChunkProtocol {
  std::int64_t chunk_bytes{4096};
  std::int64_t ack_bytes{64};
  sim::Duration turnaround{sim::microseconds(250)};
};

/// What actually happened to one frame on the wire. The timing-only
/// `transfer()` API answers "when would the last byte arrive"; `transmit()`
/// additionally reports the frame's fate, which is always "delivered
/// intact" on the catalogued physical networks and becomes interesting
/// under the fault-injection decorator (`pdc::fault::FaultyNetwork`).
struct Delivery {
  sim::TimePoint arrival;        ///< last byte at dst's NIC (includes reorder jitter)
  bool dropped{false};           ///< frame lost in transit; nothing arrives
  bool corrupted{false};         ///< arrives, but payload bits flipped (CRC-detectable)
  bool duplicated{false};        ///< a stale second copy also arrives
  sim::TimePoint dup_arrival;    ///< arrival of the duplicate (when duplicated)
};

class Network {
 public:
  virtual ~Network() = default;

  /// Start injecting `bytes` from src toward dst at the current simulated
  /// time; returns the arrival time of the last byte at dst.
  virtual sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) = 0;

  /// As transfer(), but carried by a stop-and-wait fragment protocol.
  /// Default: identical to transfer() (protocol costs negligible).
  virtual sim::TimePoint transfer_chunked(NodeId src, NodeId dst, std::int64_t bytes,
                                          const ChunkProtocol& /*protocol*/) {
    return transfer(src, dst, bytes);
  }

  /// As transfer(), but reporting the frame's fate as well as its timing.
  /// Physical networks always deliver intact; the fault decorator overrides
  /// this to inject drops/corruption/duplication/reordering. The kernel
  /// transport uses this entry point exclusively, so fault behaviour stays
  /// in one place.
  virtual Delivery transmit(NodeId src, NodeId dst, std::int64_t bytes) {
    return Delivery{.arrival = transfer(src, dst, bytes), .dup_arrival = {}};
  }

  /// transmit() for the fragment+ack wire protocol (fault granularity is
  /// the whole message: one fate per chunked transfer).
  virtual Delivery transmit_chunked(NodeId src, NodeId dst, std::int64_t bytes,
                                    const ChunkProtocol& protocol) {
    return Delivery{.arrival = transfer_chunked(src, dst, bytes, protocol), .dup_arrival = {}};
  }

  /// true: every frame is delivered intact, in FIFO order per link, exactly
  /// once -- the kernel transport may skip sequence/checksum/ack machinery
  /// entirely (and does, keeping fault-free timings bit-identical to the
  /// pre-fault kernel). The fault decorator returns false when its plan has
  /// any fault armed.
  [[nodiscard]] virtual bool reliable() const noexcept { return true; }

  /// Conservative lookahead: a lower bound on the latency of ANY transfer
  /// between distinct nodes -- if a frame is injected at time t, no byte of
  /// it can reach another node's NIC before t + lookahead(). The sharded
  /// event loop uses this as its safe horizon (shards may run a window of
  /// this width in parallel without waiting on each other). Zero means
  /// "unknown" and forces serial execution. Must not change over the life
  /// of a simulation.
  [[nodiscard]] virtual sim::Duration lookahead() const noexcept { return {}; }

  /// Nominal line rate in bits/s (for reporting).
  [[nodiscard]] virtual double line_rate_bps() const noexcept = 0;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Wire-level bytes actually transmitted for a payload of `bytes`
  /// (framing/cell tax); used by utilisation reports and tests.
  [[nodiscard]] virtual std::int64_t wire_bytes(std::int64_t bytes) const noexcept = 0;
};

}  // namespace pdc::net
