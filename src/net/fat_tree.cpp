#include "net/fat_tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/probe.hpp"

namespace pdc::net {

namespace {

/// Link key layout: direction (1 bit) | level (15 bits) | switch index
/// (32 bits) | plane (16 bits). Levels stay tiny (<= 15 tiers covers any
/// practical machine) and switch indices fit 32 bits by construction.
[[nodiscard]] std::uint64_t link_key(bool up, std::int32_t level, std::int64_t sw,
                                     std::int32_t plane) noexcept {
  return (static_cast<std::uint64_t>(up) << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level) & 0x7FFFu) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sw)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(plane) & 0xFFFFu);
}

}  // namespace

FatTreeNetwork::FatTreeNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                               FatTreeParams params)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      nodes_(nodes),
      tx_(sim, name_ + ".tx", static_cast<std::size_t>(std::max(nodes, 1))),
      rx_(sim, name_ + ".rx", static_cast<std::size_t>(std::max(nodes, 1))),
      links_(sim, name_) {
  if (nodes <= 0) throw std::invalid_argument("FatTreeNetwork: need at least one node");
  if (params_.arity < 2 || params_.levels < 1 || params_.uplinks < 1) {
    throw std::invalid_argument("FatTreeNetwork: arity >= 2, levels >= 1, uplinks >= 1");
  }
  span_.resize(static_cast<std::size_t>(params_.levels) + 1);
  span_[0] = 1;
  for (std::int32_t l = 1; l <= params_.levels; ++l) {
    span_[static_cast<std::size_t>(l)] = span_[static_cast<std::size_t>(l) - 1] * params_.arity;
  }
  if (nodes > span_[static_cast<std::size_t>(params_.levels)]) {
    throw std::invalid_argument("FatTreeNetwork: " + std::to_string(nodes) +
                                " nodes exceed capacity arity^levels = " +
                                std::to_string(span_[static_cast<std::size_t>(params_.levels)]));
  }
}

std::int64_t FatTreeNetwork::wire_bytes(std::int64_t bytes) const noexcept {
  // Non-positive counts clamp to one empty frame (never negative wire
  // bytes, which would credit serialization time back to the sender).
  if (bytes < 0) bytes = 0;
  const std::int64_t frames =
      bytes <= 0 ? 1 : (bytes + params_.frame_payload - 1) / params_.frame_payload;
  return bytes + frames * params_.frame_overhead_bytes;
}

sim::Duration FatTreeNetwork::serialization(std::int64_t bytes, double rate_bps) const noexcept {
  return sim::from_seconds(static_cast<double>(wire_bytes(bytes)) * 8.0 / rate_bps);
}

void FatTreeNetwork::check_ids(NodeId src, NodeId dst) const {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::out_of_range("FatTreeNetwork::transfer: node id out of range");
  }
}

std::int32_t FatTreeNetwork::meet_level(NodeId src, NodeId dst) const noexcept {
  // Returns the number of tiers to climb above the edge switch: 0 when both
  // hosts share an edge switch, l when the lowest common switch sits at
  // level l+1. Always < levels (the top tier covers every host).
  for (std::int32_t l = 0; l < params_.levels; ++l) {
    if (src / span_[static_cast<std::size_t>(l) + 1] ==
        dst / span_[static_cast<std::size_t>(l) + 1]) {
      return l;
    }
  }
  return params_.levels;
}

std::int32_t FatTreeNetwork::path_links(NodeId src, NodeId dst) const noexcept {
  const std::int32_t meet = meet_level(src, dst);
  return meet <= 0 ? 0 : 2 * meet;
}

sim::TimePoint FatTreeNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  check_ids(src, dst);
  const sim::Duration ser = serialization(bytes, params_.line_rate_bps);
  // Sender occupies its tx port for access overhead + serialization.
  const sim::TimePoint tx_done =
      tx_.at(static_cast<std::size_t>(src)).reserve(params_.access_overhead + ser);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .bytes = wire_bytes(bytes),
                 .aux0 = (tx_done - (params_.access_overhead + ser)).ns,
                 .aux1 = tx_done.ns,
                 .kind = trace::Kind::Frame,
                 .rank = static_cast<std::int16_t>(src),
                 .peer = static_cast<std::int16_t>(dst)});
  }
  // Head of the stream emerges from the edge switch one latency after the
  // first byte left the tx port.
  sim::TimePoint head = tx_done - ser + params_.switch_latency;
  sim::Duration stream_ser = ser;

  // `meet` tiers to climb (0: same edge switch, nothing but the edge hop).
  // The stream crosses `meet` uplink cables -- one out of src's level-l
  // switch for each l in [1, meet] -- reaches the common level-(meet+1)
  // switch, then `meet` downlink cables into dst's level-l switches for l
  // from meet down to 1. D-mod-k: every hop rides plane (dst mod uplinks).
  const std::int32_t meet = meet_level(src, dst);
  if (meet > 0) {
    const std::int32_t plane = dst % params_.uplinks;
    const sim::Duration up_ser = serialization(bytes, params_.uplink_rate_bps);
    for (std::int32_t l = 1; l <= meet; ++l) {
      const std::int64_t sw = src / span_[static_cast<std::size_t>(l)];
      auto& up = links_.at(link_key(true, l, sw, plane), [&] {
        return ".up" + std::to_string(l) + "." + std::to_string(sw) + ".p" +
               std::to_string(plane);
      });
      const sim::TimePoint done = up.reserve_from(head, up_ser);
      head = done - up_ser + params_.switch_latency;
      stream_ser = std::max(stream_ser, up_ser);
    }
    for (std::int32_t l = meet; l >= 1; --l) {
      const std::int64_t sw = dst / span_[static_cast<std::size_t>(l)];
      auto& down = links_.at(link_key(false, l, sw, plane), [&] {
        return ".down" + std::to_string(l) + "." + std::to_string(sw) + ".p" +
               std::to_string(plane);
      });
      const sim::TimePoint done = down.reserve_from(head, up_ser);
      head = done - up_ser + params_.switch_latency;
      stream_ser = std::max(stream_ser, up_ser);
    }
  }

  // Receiver rx port occupied cut-through: the window starts when the head
  // clears the last switch and lasts as long as the slowest stage streams.
  const sim::TimePoint rx_done =
      rx_.at(static_cast<std::size_t>(dst)).reserve_from(head, stream_ser);
  return rx_done + params_.propagation;
}

}  // namespace pdc::net
