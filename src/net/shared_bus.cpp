#include "net/shared_bus.hpp"

#include <algorithm>
#include <utility>

#include "trace/probe.hpp"

namespace pdc::net {

SharedBusNetwork::SharedBusNetwork(sim::Simulation& sim, std::string name, SharedBusParams params)
    : sim_(sim), name_(std::move(name)), params_(params), channel_(sim, name_ + ".channel") {}

std::int64_t SharedBusNetwork::frames_for(std::int64_t bytes) const noexcept {
  if (bytes <= 0) return 1;  // zero-payload message still sends one frame
  return (bytes + params_.frame_payload - 1) / params_.frame_payload;
}

std::int64_t SharedBusNetwork::wire_bytes(std::int64_t bytes) const noexcept {
  // Non-positive counts clamp to an empty single frame -- never negative
  // wire bytes (which would credit serialization time back to the sender).
  if (bytes < 0) bytes = 0;
  return bytes + frames_for(bytes) * params_.frame_overhead_bytes;
}

std::int64_t SharedBusNetwork::chunked_frames(std::int64_t bytes,
                                              const ChunkProtocol& protocol) const noexcept {
  // Closed form of "frame every chunk separately": full chunks all frame
  // identically, plus the short tail chunk (tests pin this against the
  // per-chunk loop across chunk/frame-size combinations).
  if (bytes <= 0) return frames_for(0);
  const std::int64_t full = bytes / protocol.chunk_bytes;
  const std::int64_t tail = bytes % protocol.chunk_bytes;
  return full * frames_for(protocol.chunk_bytes) + (tail > 0 ? frames_for(tail) : 0);
}

sim::Duration SharedBusNetwork::serialization(std::int64_t wire_bytes) const noexcept {
  return sim::from_seconds(static_cast<double>(wire_bytes) * 8.0 / params_.line_rate_bps);
}

sim::Duration SharedBusNetwork::collision_waste(std::int64_t acquisitions) const noexcept {
  // Only a backlogged segment collides; a lone sender acquires cleanly.
  if (channel_.busy_until() <= sim_.now()) return sim::Duration::zero();
  return acquisitions * params_.collision_overhead;
}

sim::TimePoint SharedBusNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  const std::int64_t frames = frames_for(bytes);
  const sim::Duration service = serialization(wire_bytes(bytes)) + frames * params_.per_frame_gap +
                                collision_waste(frames);
  const sim::TimePoint done = channel_.reserve(service);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .bytes = wire_bytes(bytes),
                 .aux0 = (done - service).ns,
                 .aux1 = done.ns,
                 .kind = trace::Kind::Frame,
                 .rank = static_cast<std::int16_t>(src),
                 .peer = static_cast<std::int16_t>(dst)});
  }
  return done + params_.propagation;
}

sim::TimePoint SharedBusNetwork::transfer_chunked(NodeId src, NodeId dst, std::int64_t bytes,
                                                  const ChunkProtocol& protocol) {
  // Stop-and-wait fragments: each chunk is framed separately and trailed by
  // an ack that must itself acquire the shared channel. Under load every
  // acquisition (data frame or ack) also pays collision waste.
  const std::int64_t chunks =
      bytes <= 0 ? 1
                 : (bytes + protocol.chunk_bytes - 1) / protocol.chunk_bytes;
  const std::int64_t frames = chunked_frames(bytes, protocol);
  const std::int64_t ack_wire = protocol.ack_bytes + params_.frame_overhead_bytes;
  const sim::Duration data_time =
      serialization(bytes + frames * params_.frame_overhead_bytes) +
      frames * params_.per_frame_gap;
  const sim::Duration ack_time =
      chunks * (serialization(ack_wire) + params_.per_frame_gap + protocol.turnaround);
  const sim::Duration service =
      data_time + ack_time + collision_waste(frames + chunks);
  const sim::TimePoint done = channel_.reserve(service);
  PDC_TRACE_BLOCK {
    trace::emit({.t_ns = sim_.now().ns,
                 .bytes = bytes + frames * params_.frame_overhead_bytes +
                          chunks * (protocol.ack_bytes + params_.frame_overhead_bytes),
                 .aux0 = (done - service).ns,
                 .aux1 = done.ns,
                 .kind = trace::Kind::Frame,
                 .rank = static_cast<std::int16_t>(src),
                 .peer = static_cast<std::int16_t>(dst)});
  }
  return done + params_.propagation;
}

}  // namespace pdc::net
