// pdceval -- switched point-to-point network (FDDI segments, ATM LAN/WAN,
// SP-1 Allnode crossbar).
//
// Each node owns a full-duplex link: a tx port resource and an rx port
// resource. A transfer serialises on the sender's tx port, crosses the
// switch (fixed latency + propagation), and occupies the receiver's rx port
// cut-through style (the rx window starts one switch latency after the tx
// window). Distinct node pairs therefore proceed in parallel; many-to-one
// traffic queues on the destination rx port, as on real switches.
//
// Optional cell segmentation (ATM AAL5: 48-byte payload in 53-byte cells)
// and an optional shared trunk (the NYNET OC-3 uplink) are supported.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/lazy_links.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::net {

struct SwitchedParams {
  double line_rate_bps{100e6};
  sim::Duration switch_latency{sim::microseconds(10)};
  sim::Duration propagation{sim::microseconds(5)};
  /// Per-packet/token/cell-burst access overhead charged once per transfer.
  sim::Duration access_overhead{sim::microseconds(50)};
  /// If >0, payload is carried in cells of `cell_payload` bytes costing
  /// `cell_total` bytes on the wire (ATM: 48/53). If 0, framing adds
  /// `frame_overhead_bytes` per `frame_payload` chunk.
  std::int64_t cell_payload{0};
  std::int64_t cell_total{0};
  std::int64_t frame_payload{4352};       ///< FDDI MTU default
  std::int64_t frame_overhead_bytes{28};
  /// Shared trunk between two halves of the cluster (ATM WAN): nodes with
  /// id < trunk_split talk to nodes >= trunk_split through one shared
  /// full-duplex trunk of `trunk_rate_bps`.
  std::optional<std::int32_t> trunk_split;
  double trunk_rate_bps{155e6};
};

class SwitchedNetwork final : public Network {
 public:
  SwitchedNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                  SwitchedParams params);

  sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) override;
  [[nodiscard]] double line_rate_bps() const noexcept override { return params_.line_rate_bps; }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t bytes) const noexcept override;

  /// Every transfer pays access overhead on the tx port, one switch
  /// latency, and propagation before any byte reaches the destination
  /// (serialization only adds to that), so their sum is a safe horizon.
  [[nodiscard]] sim::Duration lookahead() const noexcept override {
    return params_.access_overhead + params_.switch_latency + params_.propagation;
  }

  /// Node count is stored, not derived from a port container: ports are
  /// created on first use (O(active) state at large P).
  [[nodiscard]] std::int32_t node_count() const noexcept { return nodes_; }

  /// Port resources created so far (O(active) state pins).
  [[nodiscard]] std::size_t active_resources() const noexcept {
    return tx_.active() + rx_.active();
  }

 private:
  [[nodiscard]] sim::Duration serialization(std::int64_t bytes, double rate_bps) const noexcept;
  [[nodiscard]] bool crosses_trunk(NodeId src, NodeId dst) const noexcept;

  sim::Simulation& sim_;  // for trace timestamps only; timing flows via resources
  std::string name_;
  SwitchedParams params_;
  std::int32_t nodes_;
  LazyPortArray tx_;
  LazyPortArray rx_;
  std::unique_ptr<sim::SerialResource> trunk_;  // only with trunk_split
};

}  // namespace pdc::net
