// pdceval -- dragonfly network (groups of hosts, all-to-all global links).
//
// Hosts are partitioned into groups of `group_size`; a group's switches are
// modelled as one logical low-latency crossbar (intra-group transfers cross
// a single switch stage). Every ordered group pair (gs, gd) is connected by
// `global_links_per_pair` long-haul cables at `global_rate_bps`; minimal
// routing sends an inter-group packet source switch -> global link -> dst
// switch. The global link for a packet is chosen deterministically as
// (dst mod global_links_per_pair), so the same (src, dst) pair always
// follows the same path and hot group pairs queue on their shared cables --
// the dragonfly's signature contention mode.
//
// Timing follows the cut-through discipline of SwitchedNetwork: tx port
// serialisation, per-stage head advance, rx port streaming at the pace of
// the slowest stage.
#pragma once

#include <cstdint>
#include <string>

#include "net/lazy_links.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::net {

struct DragonflyParams {
  std::int32_t group_size{64};            ///< hosts per group
  std::int32_t global_links_per_pair{2};  ///< cables per ordered group pair
  double line_rate_bps{100e9};            ///< host access links
  double global_rate_bps{50e9};           ///< each global cable
  sim::Duration switch_latency{sim::microseconds(1)};
  sim::Duration global_latency{sim::microseconds(3)};  ///< long-haul optical hop
  sim::Duration propagation{sim::microseconds(1)};
  sim::Duration access_overhead{sim::microseconds(2)};
  std::int64_t frame_payload{4096};
  std::int64_t frame_overhead_bytes{48};
};

class DragonflyNetwork final : public Network {
 public:
  DragonflyNetwork(sim::Simulation& sim, std::string name, std::int32_t nodes,
                   DragonflyParams params);

  sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) override;
  [[nodiscard]] double line_rate_bps() const noexcept override { return params_.line_rate_bps; }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t bytes) const noexcept override;

  /// Shortest path (intra-group crossbar) still pays access overhead, one
  /// switch stage, and propagation; inter-group adds the global hop.
  [[nodiscard]] sim::Duration lookahead() const noexcept override {
    return params_.access_overhead + params_.switch_latency + params_.propagation;
  }

  [[nodiscard]] std::int32_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::int32_t group_of(NodeId id) const noexcept {
    return id / params_.group_size;
  }

  /// Port + global-link resources created so far (O(active) state pins).
  [[nodiscard]] std::size_t active_resources() const noexcept {
    return tx_.active() + rx_.active() + globals_.active();
  }

 private:
  [[nodiscard]] sim::Duration serialization(std::int64_t bytes, double rate_bps) const noexcept;

  sim::Simulation& sim_;  // for trace timestamps only; timing flows via resources
  std::string name_;
  DragonflyParams params_;
  std::int32_t nodes_;
  LazyPortArray tx_;
  LazyPortArray rx_;
  LazyResourceMap globals_;
};

}  // namespace pdc::net
