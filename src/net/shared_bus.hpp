// pdceval -- shared-medium network (10 Mb/s Ethernet).
//
// One transmission at a time on the whole segment; frames from concurrent
// senders interleave in FIFO arrival order (a first-order stand-in for
// CSMA/CD that is deterministic and, at the utilisations the paper reaches,
// accurate to within the backoff noise the paper itself averages away).
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace pdc::net {

struct SharedBusParams {
  double line_rate_bps{10e6};
  std::int64_t frame_payload{1500};     ///< MTU payload bytes per frame
  std::int64_t frame_overhead_bytes{26};  ///< preamble+header+FCS+IFG equivalent
  sim::Duration per_frame_gap{sim::microseconds(100)};  ///< driver + CSMA access
  sim::Duration propagation{sim::microseconds(5)};
  /// Extra channel time wasted per acquisition when the segment is already
  /// backlogged (CSMA/CD collisions + exponential backoff under load).
  /// Protocols that acquire the channel more often (fragment+ack) waste
  /// proportionally more -- the mechanism behind the paper's Figure 3 ring
  /// ordering.
  sim::Duration collision_overhead{sim::microseconds(400)};
};

class SharedBusNetwork final : public Network {
 public:
  SharedBusNetwork(sim::Simulation& sim, std::string name, SharedBusParams params);

  sim::TimePoint transfer(NodeId src, NodeId dst, std::int64_t bytes) override;
  sim::TimePoint transfer_chunked(NodeId src, NodeId dst, std::int64_t bytes,
                                  const ChunkProtocol& protocol) override;
  [[nodiscard]] double line_rate_bps() const noexcept override { return params_.line_rate_bps; }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t bytes) const noexcept override;

  /// Even an empty message occupies the channel for one frame gap (plus
  /// serialization) and then propagates, so their sum is a safe horizon.
  [[nodiscard]] sim::Duration lookahead() const noexcept override {
    return params_.per_frame_gap + params_.propagation;
  }

  [[nodiscard]] const sim::SerialResource& channel() const noexcept { return channel_; }

  /// Frames per message (one per MTU payload; a zero-byte message is one
  /// frame).
  [[nodiscard]] std::int64_t frames_for(std::int64_t bytes) const noexcept;
  /// Total frames when `bytes` is cut into `protocol.chunk_bytes` pieces
  /// that are framed independently (closed form; tests compare it against
  /// the per-chunk loop).
  [[nodiscard]] std::int64_t chunked_frames(std::int64_t bytes,
                                            const ChunkProtocol& protocol) const noexcept;

 private:
  [[nodiscard]] sim::Duration serialization(std::int64_t wire_bytes) const noexcept;
  /// Collision waste for `acquisitions` channel grabs, charged only when
  /// the segment is already backlogged.
  [[nodiscard]] sim::Duration collision_waste(std::int64_t acquisitions) const noexcept;

  sim::Simulation& sim_;
  std::string name_;
  SharedBusParams params_;
  sim::SerialResource channel_;
};

}  // namespace pdc::net
